"""Example 1 from the paper: bullish-pattern stock monitoring.

Demonstrates *why* robust load distribution exists:

1. Generates a regime-switching synthetic market (bull ↔ bear).
2. Shows that the optimal operator ordering flips with the regime — the
   exact scenario of the paper's Example 1, where a plan tuned for a
   bullish market degrades when breaking news turns the market bearish.
3. Compiles one RLD solution whose single physical plan supports both
   orderings, and simulates it through several regime flips, comparing
   against DYN (which chases the regime with operator migrations).

Run:  python examples/stock_monitoring.py
"""

from __future__ import annotations

from collections import Counter

from repro import Cluster, RLDConfig, RLDOptimizer
from repro.query import make_optimizer
from repro.runtime import DYNStrategy, RLDStrategy, compare_strategies
from repro.workloads import build_q1, generate_stock_ticks, stock_workload

REGIME_PERIOD = 90.0  # seconds per market regime


def show_market_sample() -> None:
    """Print a few synthetic ticks from each regime."""
    print("=== Synthetic market feed (regime-switching) ===")
    ticks = list(generate_stock_ticks(30_000, seed=5, tick_seconds=0.01,
                                      regime_period=100.0))
    bull = [t for t in ticks if t.bullish]
    bear = [t for t in ticks if not t.bullish]
    print(f"{len(ticks)} ticks: {len(bull)} bullish, {len(bear)} bearish")
    for tick in ticks[:3] + bear[:3]:
        regime = "BULL" if tick.bullish else "BEAR"
        print(f"  [{regime}] t={tick.timestamp:7.2f}s {tick.symbol:<5} "
              f"{tick.sector:<11} ${tick.price:<8.2f} vol={tick.volume}")
    print()


def show_ordering_flip(query, workload) -> None:
    """The optimal plan in a bull market differs from the bear market's."""
    optimizer = make_optimizer(query)
    bull_point = workload.stat_point(REGIME_PERIOD * 0.25)   # mid-bull
    bear_point = workload.stat_point(REGIME_PERIOD * 1.25)   # mid-bear
    bull_plan = optimizer.optimize(bull_point)
    bear_plan = optimizer.optimize(bear_point)
    print("=== Optimal ordering depends on the market regime ===")
    print(f"  bullish regime: {bull_plan.label}")
    print(f"  bearish regime: {bear_plan.label}")
    cost_of_wrong_plan = optimizer.plan_cost(bull_plan, bear_point)
    cost_of_right_plan = optimizer.plan_cost(bear_plan, bear_point)
    penalty = cost_of_wrong_plan / cost_of_right_plan
    print(f"  running the bullish plan in a bear market costs "
          f"{penalty:.2f}x the optimum\n")


def main() -> None:
    show_market_sample()

    query = build_q1()
    workload = stock_workload(
        query, uncertainty_level=3, regime_period=REGIME_PERIOD
    )
    show_ordering_flip(query, workload)

    # Compile: uncertainty level 3 (±30%) covers the regime swings.
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(
        query, cluster, config=RLDConfig(epsilon=0.2)
    ).solve(estimate)
    print("=== Compiled RLD solution ===")
    print(solution.summary())

    # Which robust plan serves which regime?  Probe the classifier.
    strategy = RLDStrategy(solution)
    routed = Counter()
    for minute in range(12):
        t = minute * 30.0
        decision = strategy.route(t, workload.stat_point(t))
        routed[decision.plan.label] += 1
    print("\nClassifier routing over 6 minutes (one probe per 30s):")
    for label, count in routed.most_common():
        print(f"  {label}: {count} probes")

    # Simulate through ~5 regime flips; DYN chases with migrations.
    strategies = {
        "RLD": strategy,
        "DYN": DYNStrategy(query, cluster, estimate=estimate.point,
                           imbalance_threshold=0.1),
    }
    comparison = compare_strategies(
        query, cluster, workload, strategies,
        duration=REGIME_PERIOD * 5, seed=21, strategy_order=("DYN", "RLD"),
    )
    print(f"\n=== {REGIME_PERIOD * 5:.0f}s simulation across regime flips ===")
    for name, report in comparison.reports.items():
        print(f"  {name}: {report.avg_tuple_latency_ms:8.1f} ms avg latency, "
              f"{report.tuples_out:9.0f} tuples out, "
              f"{report.migrations} migrations, "
              f"{report.plan_switches} plan switches")


if __name__ == "__main__":
    main()
