"""Sensor-network monitoring: the paper's second data set (§6.1).

A 10-way join (Q2) over Intel-lab-style sensor streams whose rates
follow a diurnal cycle and whose selectivities drift as bounded random
walks.  Compares all three load-distribution strategies over a full
simulated "day" and reports per-node utilization of the RLD placement.

Run:  python examples/sensor_network.py
"""

from __future__ import annotations

from repro import Cluster, RLDConfig, RLDOptimizer
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.workloads import build_q2, generate_sensor_readings, sensor_workload

DAY_SECONDS = 400.0  # one compressed day


def show_sensor_sample() -> None:
    """Print a handful of synthetic mote readings."""
    print("=== Synthetic Intel-lab style sensor feed ===")
    for reading in list(generate_sensor_readings(6, seed=31)):
        print(f"  t={reading.timestamp:5.1f}s mote={reading.mote_id:<3} "
              f"T={reading.temperature:6.2f}C RH={reading.humidity:6.2f}% "
              f"light={reading.light:7.2f}lx V={reading.voltage:.3f}")
    print()


def main() -> None:
    show_sensor_sample()

    query = build_q2()
    workload = sensor_workload(query, uncertainty_level=2, day_seconds=DAY_SECONDS)

    # Level-2 uncertainty on the four most volatile selectivities plus
    # the diurnal rate — a 5-D parameter space, the paper's largest
    # dimensionality (Figure 12).  Remaining statistics are treated as
    # exact, as the paper does for well-estimated parameters.
    volatile_ops = (0, 2, 4, 6)
    estimate = query.default_estimates(
        {f"sel:{i}": 2 for i in volatile_ops} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(6, 300.0)
    solution = RLDOptimizer(
        query, cluster, config=RLDConfig(epsilon=0.2)
    ).solve(estimate)

    print("=== Compiled RLD solution for Q2 (10-way join) ===")
    print(solution.summary())
    print(f"\nERP made {solution.partitioning.optimizer_calls} optimizer calls "
          f"to cover a {solution.space.n_points}-point parameter space.")

    strategies = build_standard_strategies(
        query, cluster, estimate=estimate, rld_solution=solution
    )
    comparison = compare_strategies(
        query, cluster, workload, strategies, duration=2 * DAY_SECONDS, seed=31
    )

    print(f"\n=== Two simulated days ({2 * DAY_SECONDS:.0f}s) ===")
    for name, report in comparison.reports.items():
        print(f"  {name}: {report.avg_tuple_latency_ms:8.1f} ms avg latency, "
              f"{report.tuples_out:10.0f} tuples out, "
              f"{report.migrations} migrations")

    rld_report = comparison.reports["RLD"]
    print("\nRLD per-node utilization over the run:")
    for node, utilization in enumerate(rld_report.utilization()):
        bar = "#" * int(utilization * 40)
        print(f"  node {node}: {utilization:5.1%} {bar}")


if __name__ == "__main__":
    main()
