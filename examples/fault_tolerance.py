"""What happens when a machine actually dies? (chaos edition)

The paper stresses the strategies with *statistics drift*; real stream
processors also lose machines.  This demo crashes the node that RLD's
preferred plan bottlenecks on — the worst single-node failure for its
fixed placement — for 30 seconds mid-run, and compares the three
strategies on the identical chaos:

* ROD has no failure response: batches queue at the dead node and its
  latency balloons until recovery.
* DYN evacuates the dead node with forced migrations, paying the full
  migration pause per operator and dropping the work it abandons.
* RLD keeps its placement but *reroutes*: the classifier falls back to
  a surviving robust plan whose bottleneck is elsewhere, so the dead
  operator sees thinned batches and its stalled queue drains quickly.

Everything is seeded — rerun it and you will get byte-identical
numbers (the determinism the chaos test suite locks in).

Run:  PYTHONPATH=src python examples/fault_tolerance.py
"""

from __future__ import annotations

import math

from repro import Cluster, RLDConfig, RLDOptimizer
from repro.engine.faults import FaultSchedule, node_crash
from repro.runtime.comparison import build_standard_strategies, compare_strategies
from repro.runtime.rld_runtime import RLDStrategy
from repro.workloads import build_q1, stock_workload

CRASH_AT = 40.0
OUTAGE = 30.0
DURATION = 150.0


def fmt_ms(value: float) -> str:
    return "  stalled" if math.isnan(value) else f"{value:9.1f}"


def main() -> None:
    query = build_q1()
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )
    cluster = Cluster.homogeneous(4, 420.0)
    solution = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2)).solve(
        estimate
    )

    # Find the node RLD's preferred plan leans on hardest.
    probe = RLDStrategy(solution)
    stats = estimate.point
    preferred = probe.route(0.0, stats).plan
    bottleneck = probe.bottleneck_node(preferred, stats)
    faults = FaultSchedule(node_crash(CRASH_AT, bottleneck, OUTAGE))
    print(
        f"Crashing node {bottleneck} (RLD's preferred-plan bottleneck) "
        f"at t={CRASH_AT:.0f}s for {OUTAGE:.0f}s\n"
    )

    workload = stock_workload(query, uncertainty_level=3)
    results = {}
    for label, schedule in (("healthy", None), ("crashed", faults)):
        strategies = build_standard_strategies(
            query, cluster, estimate=estimate, rld_solution=solution
        )
        results[label] = compare_strategies(
            query, cluster, workload, strategies,
            duration=DURATION, seed=29, faults=schedule,
        )

    header = (
        f"{'strategy':>8} | {'healthy ms':>10} | {'crashed ms':>10} "
        f"| {'stalls':>6} | {'dropped':>7} | {'migr':>4} | {'switches':>8}"
    )
    print(header)
    print("-" * len(header))
    for name in ("ROD", "DYN", "RLD"):
        healthy = results["healthy"].reports[name]
        crashed = results["crashed"].reports[name]
        print(
            f"{name:>8} | {fmt_ms(healthy.avg_tuple_latency_ms):>10} "
            f"| {fmt_ms(crashed.avg_tuple_latency_ms):>10} "
            f"| {crashed.batch_stalls:>6} | {crashed.batches_dropped:>7} "
            f"| {crashed.migrations:>4} | {crashed.plan_switches:>8}"
        )

    rld = results["crashed"].reports["RLD"]
    rod = results["crashed"].reports["ROD"]
    print(
        f"\nReading: ROD keeps queueing full-size batches at the dead node "
        f"({rod.batch_stalls} stalled submissions); RLD reroutes through a "
        f"surviving candidate plan ({rld.plan_switches} plan switches, zero "
        f"migrations) and finishes the run at "
        f"{rld.avg_tuple_latency_ms / rod.avg_tuple_latency_ms:.0%} of ROD's "
        f"average latency.  DYN survives too, but pays "
        f"{results['crashed'].reports['DYN'].migration_stall_seconds:.1f}s of "
        f"migration stalls to get there."
    )


if __name__ == "__main__":
    main()
