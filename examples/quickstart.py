"""Quickstart: compile and run a Robust Load Distribution solution.

Builds the paper's Q1 (5-way stream join), declares uncertainty on its
statistics, compiles the two-step RLD solution (ERP robust logical
plans + OptPrune robust physical plan), and simulates it against the
static ROD baseline on a fluctuating stock-market stream.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Cluster, RLDConfig, RLDOptimizer
from repro.runtime import RLDStrategy, RODStrategy, compare_strategies
from repro.workloads import build_q1, stock_workload


def main() -> None:
    # 1. The query: a 5-way join monitoring stocks against news feeds.
    query = build_q1()
    print(f"Query {query.name}: {len(query)} operators over "
          f"{len(query.streams)} streams\n")

    # 2. Statistics estimates with uncertainty levels (Algorithm 1).
    #    Level 3 means each selectivity may drift ±30% at runtime.
    estimate = query.default_estimates(
        {op.selectivity_param: 3 for op in query.operators} | {"rate": 2}
    )

    # 3. Compile the RLD solution for a 4-machine cluster.
    cluster = Cluster.homogeneous(n_nodes=4, capacity=380.0)
    optimizer = RLDOptimizer(query, cluster, config=RLDConfig(epsilon=0.2))
    solution = optimizer.solve(estimate)
    print(solution.summary())
    print(f"\nCompile-time cost: {solution.partitioning.optimizer_calls} "
          f"optimizer calls "
          f"(early-terminated: {solution.partitioning.terminated_early})")

    # 4. Simulate 5 minutes of a regime-switching market against ROD.
    workload = stock_workload(query, uncertainty_level=3, regime_period=60.0)
    strategies = {
        "RLD": RLDStrategy(solution),
        "ROD": RODStrategy(query, cluster, estimate=estimate.point),
    }
    comparison = compare_strategies(
        query, cluster, workload, strategies,
        duration=300.0, seed=7, strategy_order=("ROD", "RLD"),
    )

    print("\n=== 5-minute simulation, regime-switching market ===")
    header = f"{'strategy':>8} | {'avg latency':>12} | {'tuples out':>11} | {'migrations':>10} | {'plan switches':>13}"
    print(header)
    print("-" * len(header))
    for name, report in comparison.reports.items():
        print(
            f"{name:>8} | {report.avg_tuple_latency_ms:>10.1f}ms "
            f"| {report.tuples_out:>11.0f} | {report.migrations:>10} "
            f"| {report.plan_switches:>13}"
        )
    speedup = comparison.latency_ms("ROD") / comparison.latency_ms("RLD")
    print(f"\nRLD processes tuples {speedup:.2f}x faster than static ROD, "
          f"with zero operator migrations.")


if __name__ == "__main__":
    main()
