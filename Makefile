# Convenience targets for the RLD reproduction.
#
# Every target works in a clean checkout without an editable install:
# the package lives under src/, so we put it on PYTHONPATH directly —
# the same command CI and the tier-1 verify run.

PYTHON ?= python
PYTHONPATH_SRC = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test lint chaos bench bench-tables examples all

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

# Static gates: the repro-lint invariant checker, the whole-program
# repro-audit (call-graph + interprocedural passes), then mypy --strict
# over the determinism/parity-critical packages (core + query + engine
# + runtime + workloads; config in pyproject.toml).  mypy is an optional dev
# dependency — when it is not installed the type gate is skipped with a
# notice so `make lint` still works in minimal environments; CI always
# installs it, so the gate is enforced there.
lint:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro lint
	$(PYTHONPATH_SRC) $(PYTHON) -m repro audit
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --strict src/repro/core src/repro/query src/repro/engine src/repro/runtime src/repro/workloads; \
	else \
		echo "mypy not installed; skipping the strict-typing gate (CI enforces it)"; \
	fi

chaos:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro simulate --query q1 --duration 150 \
		--faults random:crashes=1:slowdowns=1:partitions=1

# The cost-kernel benchmark runs on plain perf_counter timing (no
# pytest-benchmark), so --benchmark-only would deselect it — it gets
# its own invocation and writes BENCH_costkernel.json at the repo root.
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/test_perf_costkernel.py -q -s
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHONPATH_SRC) $(PYTHON) examples/quickstart.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/stock_monitoring.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/sensor_network.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/fluctuation_tolerance.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/fault_tolerance.py
	$(PYTHONPATH_SRC) $(PYTHON) examples/deploy_workflow.py

all: test bench
