# Convenience targets for the RLD reproduction.

.PHONY: install test bench bench-tables examples all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-tables:
	pytest benchmarks/ --benchmark-only -s

examples:
	python examples/quickstart.py
	python examples/stock_monitoring.py
	python examples/sensor_network.py
	python examples/fluctuation_tolerance.py
	python examples/deploy_workflow.py

all: install test bench
